"""Vectorized batch kernels: kernel-vs-object equivalence and state.

The contract under test: for every built-in scheme, the kernel engine's
lifetime trajectory agrees with the object engine's — bit-for-bit for
the schemes whose ladder is deterministic in the required-work draw
(baseline, DPES, i-ISPE, m-ISPE), and within a tight tolerance with the
same lifetime PEC for AERO (whose verify-noise draws come from a
kernel-local stream). Plus: the batch state mirrors Block objects, the
batched RBER/jitter helpers match their scalar counterparts, and the
kernel path is deterministic under a fixed seed.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.registry import SCHEMES
from repro.kernels import BlockArrayState, kernel_for_scheme
from repro.lifetime import LifetimeSimulator, compare_schemes
from repro.nand.block import Block
from repro.nand.chip_types import TLC_2D_2XNM, TLC_3D_48L
from repro.nand.erase_model import BlockEraseModel
from repro.nand.geometry import BlockAddress
from repro.nand.rber import RberModel
from repro.schemes import make_scheme

PROFILES = (TLC_3D_48L, TLC_2D_2XNM)
#: Schemes whose batch kernel reproduces the object path exactly.
DETERMINISTIC_KEYS = ("baseline", "dpes", "iispe", "mispe")
#: Schemes with kernel-local verify noise (tolerance equivalence).
STOCHASTIC_KEYS = ("aero_cons", "aero")

SIM_KWARGS = dict(block_count=32, step=100, seed=11)


def _curves(profile, key, **overrides):
    kwargs = {**SIM_KWARGS, **overrides}
    obj = LifetimeSimulator(profile, key, engine="object", **kwargs).run()
    ker = LifetimeSimulator(profile, key, engine="kernel", **kwargs).run()
    return obj, ker


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
@pytest.mark.parametrize("key", DETERMINISTIC_KEYS)
def test_deterministic_scheme_kernel_is_exact(profile, key):
    obj, ker = _curves(profile, key)
    assert obj.lifetime_pec == ker.lifetime_pec
    assert obj.pec_points == ker.pec_points
    np.testing.assert_allclose(ker.avg_mrber, obj.avg_mrber, atol=1e-9)


@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
@pytest.mark.parametrize("key", STOCHASTIC_KEYS)
def test_aero_kernel_matches_within_tolerance(profile, key):
    obj, ker = _curves(profile, key)
    assert obj.lifetime_pec == ker.lifetime_pec
    assert obj.pec_points == ker.pec_points
    tolerance = 1.0 if key == "aero_cons" else 8.0
    delta = np.max(np.abs(np.array(obj.avg_mrber) - np.array(ker.avg_mrber)))
    assert delta < tolerance


@pytest.mark.parametrize("key", DETERMINISTIC_KEYS + STOCHASTIC_KEYS)
def test_kernel_engine_is_deterministic(key):
    first = LifetimeSimulator(
        TLC_3D_48L, key, engine="kernel", **SIM_KWARGS
    ).run()
    second = LifetimeSimulator(
        TLC_3D_48L, key, engine="kernel", **SIM_KWARGS
    ).run()
    assert first.lifetime_pec == second.lifetime_pec
    assert first.avg_mrber == second.avg_mrber


def test_aero_kernel_counters_sane():
    simulator = LifetimeSimulator(
        TLC_3D_48L, "aero", engine="kernel", **SIM_KWARGS
    )
    simulator.run(max_pec=2000)
    stats = simulator.kernel.stats
    assert stats.erases == 32 * (2000 // SIM_KWARGS["step"])
    assert stats.shallow_probes > 0
    assert stats.aggressive_accepts > 0
    assert stats.pulses_applied > 0
    assert stats.pulses_saved_vs_baseline > 0
    assert stats.injected_mispredictions == 0


def test_aero_cons_kernel_never_accepts():
    simulator = LifetimeSimulator(
        TLC_3D_48L, "aero_cons", engine="kernel", **SIM_KWARGS
    )
    simulator.run(max_pec=2000)
    assert simulator.kernel.stats.aggressive_accepts == 0


def test_kernel_misprediction_injection_counts():
    simulator = LifetimeSimulator(
        TLC_3D_48L, "aero", engine="kernel", mispredict_rate=0.2, **SIM_KWARGS
    )
    simulator.run(max_pec=2000)
    stats = simulator.kernel.stats
    assert stats.injected_mispredictions > 0
    assert stats.mispredictions > 0


def test_engine_validation_and_fallback():
    with pytest.raises(ConfigError):
        LifetimeSimulator(TLC_3D_48L, "baseline", engine="warp")

    from repro.erase.ispe import BaselineIspeScheme

    class KernellessScheme(BaselineIspeScheme):
        """Third-party-style scheme: base-class (None) batch_kernel."""

        name = "kernelless"

        def batch_kernel(self):
            return None

    @SCHEMES.register("kernelless")
    def _build(profile, *, mispredict_rate=0.0, rber_requirement=None):
        return KernellessScheme(profile)

    try:
        with pytest.raises(ConfigError):
            LifetimeSimulator(TLC_3D_48L, "kernelless", engine="kernel")
        # auto falls back to the object path and still runs.
        simulator = LifetimeSimulator(
            TLC_3D_48L, "kernelless", block_count=4, step=200, engine="auto"
        )
        assert simulator.kernel is None
        assert simulator.run(max_pec=400).pec_points
    finally:
        SCHEMES.unregister("kernelless")


def test_kernel_for_scheme_resolution():
    for key in DETERMINISTIC_KEYS + STOCHASTIC_KEYS:
        scheme = make_scheme(TLC_3D_48L, key)
        kernel = kernel_for_scheme(scheme)
        assert kernel is not None
        assert kernel.scheme_key in (key, scheme.name)
    assert kernel_for_scheme(object()) is None


def _fresh_blocks(profile, count, seed):
    return [
        Block(
            address=BlockAddress(0, 0, 0, index),
            profile=profile,
            pages=4,
            seed=seed + index,
        )
        for index in range(count)
    ]


def test_block_array_state_mirrors_blocks():
    blocks = _fresh_blocks(TLC_3D_48L, 8, seed=5)
    blocks[3].wear.age_kilocycles = 2.5
    blocks[3].wear.pec = 2500
    blocks[5].wear.residual_fail_bits = 700
    blocks[5].wear.residual_nispe = 3
    state = BlockArrayState.from_blocks(blocks)
    assert state.count == len(state) == 8
    for index, block in enumerate(blocks):
        assert state.base[index] == block.erase_model.base
        assert state.rate[index] == block.erase_model.rate
        assert state.sensitivity[index] == pytest.approx(
            block.rber_sensitivity
        )
        assert state.age[index] == block.wear.age_kilocycles
        assert state.pec[index] == block.wear.pec
        assert state.residual_fail_bits[index] == block.wear.residual_fail_bits
        assert state.residual_nispe[index] == block.wear.residual_nispe


def test_block_array_required_pulses_matches_objects():
    seed = 9
    state = BlockArrayState.from_blocks(_fresh_blocks(TLC_3D_48L, 6, seed))
    mirror = _fresh_blocks(TLC_3D_48L, 6, seed)
    for _ in range(70):  # crosses a jitter-buffer refill boundary
        batch = state.required_pulses()
        scalar = [
            block.erase_model.required_pulses(block.wear.age_kilocycles)
            for block in mirror
        ]
        assert batch.tolist() == scalar


def test_jitter_batch_consumes_stream_like_scalars():
    from repro.nand.erase_model import ERASE_JITTER_STD

    model = BlockEraseModel(TLC_3D_48L, 123, "jitter-test")
    clone = BlockEraseModel(TLC_3D_48L, 123, "jitter-test")
    batch = model.jitter_batch(16)
    scalars = [
        float(clone._jitter_rng.normal(0.0, ERASE_JITTER_STD))
        for _ in range(16)
    ]
    np.testing.assert_array_equal(batch, scalars)


def test_mrber_batch_matches_scalar_model():
    from repro.nand.erase_model import WearState

    model = RberModel(TLC_3D_48L)
    wear_states = [
        WearState(),
        WearState(age_kilocycles=3.2, pec=3200),
        WearState(age_kilocycles=5.0, pec=5000,
                  residual_fail_bits=900, residual_nispe=2),
        WearState(age_kilocycles=1.0, pec=1000,
                  residual_fail_bits=50, residual_nispe=1),
    ]
    extra = np.array([0.0, 13.0, 0.0, 2.0])
    sensitivity = np.array([1.0, 0.8, 1.3, 1.0])
    batch = model.mrber_batch(
        np.array([w.age_kilocycles for w in wear_states]),
        np.array([w.residual_fail_bits for w in wear_states]),
        np.array([w.residual_nispe for w in wear_states]),
        extra_rber=extra,
        sensitivity=sensitivity,
    )
    for index, wear in enumerate(wear_states):
        sample = model.mrber(
            wear, extra_rber=extra[index], sensitivity=sensitivity[index]
        )
        assert batch.wear[index] == pytest.approx(sample.wear, abs=1e-12)
        assert batch.retention[index] == pytest.approx(
            sample.retention, abs=1e-12
        )
        assert batch.under_erase_penalty[index] == pytest.approx(
            sample.under_erase_penalty, abs=1e-12
        )
        assert batch.total[index] == pytest.approx(sample.total, abs=1e-12)


def test_erase_latency_cdf_kernel_matches_object():
    from repro.characterization import TestPlatform
    from repro.characterization.experiments import erase_latency_cdf

    platform = TestPlatform(TLC_3D_48L, chips=4, blocks_per_chip=10, seed=2)
    kernel = erase_latency_cdf(
        platform, pec_points=(0, 3000), blocks_per_point=40, engine="kernel"
    )
    objectp = erase_latency_cdf(
        platform, pec_points=(0, 3000), blocks_per_point=40, engine="object"
    )
    for pec in (0, 3000):
        assert kernel.nispe_histogram[pec] == objectp.nispe_histogram[pec]
        np.testing.assert_allclose(
            kernel.mtbers_ms[pec], objectp.mtbers_ms[pec], atol=1e-9
        )


def test_failbit_linearity_kernel_fits_regularities():
    from repro.characterization import TestPlatform
    from repro.characterization.experiments import failbit_linearity

    platform = TestPlatform(TLC_3D_48L, chips=4, blocks_per_chip=10, seed=2)
    result = failbit_linearity(
        platform, pec_points=(3000, 4000), blocks_per_point=40, engine="kernel"
    )
    profile = platform.profile
    assert abs(result.overall.delta - profile.delta) / profile.delta < 0.2
    assert abs(result.overall.gamma - profile.gamma) / profile.gamma < 0.4


def test_compare_schemes_kernel_engine_end_to_end():
    comparison = compare_schemes(
        TLC_3D_48L,
        scheme_keys=("baseline", "aero"),
        block_count=16,
        step=100,
        seed=4,
        engine="kernel",
    )
    assert comparison.lifetime("aero") > comparison.lifetime("baseline")
