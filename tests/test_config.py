"""SSD configuration objects."""

import pytest

from repro.config import GcSpec, SchedulerSpec, SsdSpec
from repro.errors import ConfigError
from repro.nand.geometry import NandGeometry


def test_table2_defaults():
    spec = SsdSpec.paper_table2()
    assert spec.overprovisioning == 0.20
    assert spec.geometry.channels == 8
    assert spec.geometry.chips_per_channel == 2
    assert spec.profile.name == "3D-TLC-48L"
    assert spec.scheduler.erase_suspension


def test_logical_capacity_excludes_op():
    spec = SsdSpec.small_test()
    assert spec.logical_pages == int(spec.geometry.pages * 0.8)
    assert spec.logical_bytes == spec.logical_pages * spec.geometry.page_size


def test_page_transfer_time():
    spec = SsdSpec.small_test()
    # 4 KiB at 1200 MB/s ~ 3.4 us.
    assert spec.page_transfer_us == pytest.approx(4096 / 1200.0)


def test_with_scheduler_override():
    spec = SsdSpec.small_test()
    no_suspend = spec.with_scheduler(erase_suspension=False)
    assert not no_suspend.scheduler.erase_suspension
    assert spec.scheduler.erase_suspension  # original untouched


def test_validation():
    with pytest.raises(ConfigError):
        SsdSpec(overprovisioning=0.95)
    with pytest.raises(ConfigError):
        SsdSpec(channel_mb_per_s=0.0)
    with pytest.raises(ConfigError):
        GcSpec(low_watermark=5, high_watermark=5)
    with pytest.raises(ConfigError):
        # Geometry too small for GC watermarks.
        SsdSpec(
            geometry=NandGeometry(
                channels=1, chips_per_channel=1, planes_per_chip=1,
                blocks_per_plane=6, pages_per_block=8, page_size=4096,
            )
        )


def test_canned_configs_valid():
    for spec in (SsdSpec.small_test(), SsdSpec.bench()):
        assert spec.logical_pages > 0
        assert spec.geometry.blocks_per_plane > spec.gc.high_watermark


def test_scheduler_spec_defaults():
    scheduler = SchedulerSpec()
    assert scheduler.user_priority
    assert scheduler.suspend_overhead_us >= 0
    assert scheduler.gc_escalation_backlog >= 1
