"""AERO erase scheme: FELP-driven reduction, shallow erasure, margins."""

import pytest

from repro.core.aero import AeroEraseScheme
from repro.erase.ispe import BaselineIspeScheme
from repro.erase.scheme import SegmentKind
from repro.errors import ConfigError
from tests.conftest import make_block


@pytest.fixture
def aero(profile):
    return AeroEraseScheme(profile, aggressive=True)


@pytest.fixture
def aero_cons(profile):
    return AeroEraseScheme(profile, aggressive=False)


def test_scheme_names(aero, aero_cons):
    assert aero.name == "aero"
    assert aero_cons.name == "aero_cons"


def test_config_validation(profile):
    with pytest.raises(ConfigError):
        AeroEraseScheme(profile, mispredict_rate=1.5)
    with pytest.raises(ConfigError):
        AeroEraseScheme(profile, shallow_pulses=7)


def test_shallow_erasure_on_fresh_block(aero_cons, profile, rng):
    """Single-loop erase optimized via the 1 ms probe (Figure 6b)."""
    block = make_block(profile, age_kilocycles=0.1)
    result = aero_cons.erase(block, rng)
    assert result.completed
    assert result.used_shallow_erase
    first = result.segments[0]
    assert first.kind is SegmentKind.ERASE_PULSE
    assert first.pulses == 2  # tSE = 1 ms
    assert result.latency_us < profile.t_ep_us + profile.t_vr_us


def test_conservative_never_under_erases(aero_cons, profile, rng):
    """AEROcons provides exactly ISPE's reliability guarantee."""
    for age in (0.0, 0.5, 1.5, 2.5, 3.5, 4.5, 5.5):
        for index in range(10):
            block = make_block(profile, age_kilocycles=age, seed=50 + index, index=index)
            result = aero_cons.erase(block, rng)
            assert result.completed
            assert not result.accepted_under_erase
            assert result.residual_fail_bits == 0
            assert block.wear.residual_fail_bits == 0


def test_aero_reduces_latency_vs_baseline(aero, profile, rng):
    total_aero, total_base = 0.0, 0.0
    for age in (0.2, 1.0, 2.5, 4.0):
        for index in range(8):
            block_a = make_block(profile, age_kilocycles=age, seed=90 + index)
            block_b = make_block(profile, age_kilocycles=age, seed=90 + index)
            total_aero += aero.erase(block_a, rng).latency_us
            total_base += BaselineIspeScheme(profile).erase(block_b, rng).latency_us
    assert total_aero < 0.8 * total_base


def test_aero_reduces_damage_vs_baseline(aero, profile, rng):
    for age in (0.2, 2.5, 4.5):
        block_a = make_block(profile, age_kilocycles=age, seed=13)
        block_b = make_block(profile, age_kilocycles=age, seed=13)
        damage_a = aero.erase(block_a, rng).damage
        damage_b = BaselineIspeScheme(profile).erase(block_b, rng).damage
        assert damage_a < damage_b


def test_aggressive_accepts_bounded_residual(aero, profile, rng):
    accepted = []
    for index in range(40):
        block = make_block(profile, age_kilocycles=2.0, seed=200 + index)
        result = aero.erase(block, rng)
        if result.accepted_under_erase:
            accepted.append(result)
            assert result.residual_fail_bits <= aero.predictor.acceptance_threshold()
            assert result.residual_fail_bits > profile.f_pass
            assert block.wear.residual_fail_bits == result.residual_fail_bits
    assert accepted, "aggressive mode never used its margin at 2K PEC"


def test_sef_disables_probe_on_hard_blocks(aero, profile, rng):
    """Multi-loop blocks flip their shallow flag (Figure 12, step 5)."""
    block = make_block(profile, age_kilocycles=3.0, seed=77)
    assert aero.shallow_enabled(block)
    result = aero.erase(block, rng)
    assert result.used_shallow_erase
    assert not result.shallow_erase_useful
    assert not aero.shallow_enabled(block)
    # Next erase skips the probe entirely: first segment is a full EP.
    result2 = aero.erase(block, rng)
    assert not result2.used_shallow_erase
    assert result2.segments[0].pulses == profile.pulses_per_loop


def test_use_shallow_override(aero, profile, rng):
    block = make_block(profile, age_kilocycles=0.1)
    result = aero.erase(block, rng, use_shallow=False)
    assert not result.used_shallow_erase


def test_misprediction_injection_and_repair(profile, rng):
    scheme = AeroEraseScheme(profile, aggressive=False, mispredict_rate=1.0)
    block = make_block(profile, age_kilocycles=0.5)
    result = scheme.erase(block, rng)
    assert result.completed
    assert scheme.stats.injected_mispredictions >= 1
    assert result.mispredictions >= 1
    # Repair pulses are single quanta (paper: +0.5 ms per event).
    repair = [
        s for s in result.segments
        if s.kind is SegmentKind.ERASE_PULSE and s.pulses == 1
    ]
    assert repair


def test_stats_accumulate(aero, profile, rng):
    aero.reset_stats()
    for index in range(5):
        block = make_block(profile, age_kilocycles=1.0, seed=300 + index)
        aero.erase(block, rng)
    stats = aero.stats.as_dict()
    assert stats["erases"] == 5
    assert stats["shallow_probes"] >= 1
    assert stats["pulses_saved_vs_baseline"] > 0


def test_equation2_latency_structure(aero_cons, profile, rng):
    """tBERS = (tEP + tVR) * NISPE - delta_tEP (Equation 2): the final
    loop is the truncated one; earlier loops run at full length."""
    block = make_block(profile, age_kilocycles=2.5, seed=11)
    result = aero_cons.erase(block, rng)
    if result.loops >= 2 and not result.used_shallow_erase:
        pulse_segments = [
            s for s in result.segments if s.kind is SegmentKind.ERASE_PULSE
        ]
        for segment in pulse_segments[:-1]:
            if segment.loop < result.loops:
                assert segment.pulses == profile.pulses_per_loop
        assert result.latency_us <= result.loops * (
            profile.t_ep_us + profile.t_vr_us
        )


def test_aero_on_all_profiles(any_profile, rng):
    """The scheme works unmodified on 2D TLC and 3D MLC (Section 5.5)."""
    scheme = AeroEraseScheme(any_profile, aggressive=True)
    for age in (0.2, 2.0, 4.0):
        block = make_block(any_profile, age_kilocycles=age, seed=40)
        result = scheme.erase(block, rng)
        assert result.completed or result.accepted_under_erase
