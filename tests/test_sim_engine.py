"""Discrete-event engine semantics."""

import pytest

from repro.errors import SchedulingError
from repro.rng import make_rng
from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(30.0, lambda: fired.append("c"))
    sim.at(10.0, lambda: fired.append("a"))
    sim.at(20.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_same_time_events_fifo():
    sim = Simulator()
    fired = []
    for tag in "abcd":
        sim.at(5.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list("abcd")


def test_after_is_relative():
    sim = Simulator()
    times = []
    sim.at(100.0, lambda: sim.after(50.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150.0]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.at(5.0, lambda: None)
    with pytest.raises(SchedulingError):
        sim.after(-1.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.at(10.0, lambda: fired.append("x"))
    sim.at(5.0, lambda: event.cancel())
    sim.run()
    assert fired == []
    assert event.cancelled


def test_run_until_horizon():
    sim = Simulator()
    fired = []
    sim.at(10.0, lambda: fired.append(1))
    sim.at(100.0, lambda: fired.append(2))
    sim.run(until=50.0)
    assert fired == [1]
    assert sim.now == 50.0
    sim.run()
    assert fired == [1, 2]


def test_cascading_events():
    sim = Simulator()
    counter = []

    def chain(depth):
        counter.append(depth)
        if depth < 5:
            sim.after(1.0, lambda: chain(depth + 1))

    sim.at(0.0, lambda: chain(0))
    sim.run()
    assert counter == list(range(6))
    assert sim.events_fired == 6  # chain(0) through chain(5)


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.after(1.0, forever)

    sim.at(0.0, forever)
    with pytest.raises(SchedulingError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.at(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


# --- property-style checks over random schedules -------------------------------


def test_property_fifo_tiebreak_random_schedules():
    """Events always fire sorted by (time, submission order).

    Random schedules draw times from a tiny domain so many events
    collide on the same instant; the firing order must equal a stable
    sort of the submission order by time.
    """
    rng = make_rng(0x51E)
    for _ in range(25):
        sim = Simulator()
        times = rng.integers(0, 8, size=50)
        fired = []
        for index, time in enumerate(times):
            sim.at(float(time), lambda t=int(time), i=index: fired.append((t, i)))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == 50


def test_property_cancellation_random_subsets():
    """Cancelled events never fire; survivors keep their FIFO order."""
    rng = make_rng(0xCA9C)
    for _ in range(25):
        sim = Simulator()
        times = rng.integers(0, 8, size=40)
        cancel_mask = rng.random(40) < 0.4
        fired = []
        events = []
        for index, time in enumerate(times):
            events.append(
                sim.at(float(time), lambda t=int(time), i=index: fired.append((t, i)))
            )
        for event, cancel in zip(events, cancel_mask):
            if cancel:
                event.cancel()
        sim.run()
        expected = sorted(
            (int(t), i)
            for i, (t, cancel) in enumerate(zip(times, cancel_mask))
            if not cancel
        )
        assert fired == expected


def test_cancel_after_firing_is_a_noop():
    sim = Simulator()
    fired = []
    event = sim.at(1.0, lambda: fired.append("x"))
    sim.run()
    assert fired == ["x"]
    event.cancel()  # already fired: must not raise or un-fire
    event.cancel()  # idempotent
    assert fired == ["x"]
    assert sim.step() is False


def test_cancel_twice_before_firing_is_idempotent():
    sim = Simulator()
    fired = []
    event = sim.at(1.0, lambda: fired.append("x"))
    event.cancel()
    event.cancel()
    sim.run()
    assert fired == []
    assert event.cancelled


def test_property_run_until_clamps_and_preserves_later_events():
    """run(until=h) fires exactly the events with time <= h, sets now == h,
    and leaves every later event queued and still runnable."""
    rng = make_rng(0x0717)
    for _ in range(25):
        sim = Simulator()
        times = sorted(float(t) for t in rng.integers(0, 100, size=30))
        horizon = float(rng.integers(0, 100))
        fired = []
        for time in times:
            sim.at(time, lambda t=time: fired.append(t))
        sim.run(until=horizon)
        assert fired == [t for t in times if t <= horizon]
        assert sim.now == horizon
        sim.run()
        assert fired == times
        assert sim.now == max([horizon] + times)


def test_run_until_fires_event_exactly_at_horizon():
    sim = Simulator()
    fired = []
    sim.at(50.0, lambda: fired.append("edge"))
    sim.run(until=50.0)
    assert fired == ["edge"]
    assert sim.now == 50.0


def test_run_until_on_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=25.0)
    assert sim.now == 25.0
    sim.run(until=10.0)  # horizon in the past: clock never goes backwards
    assert sim.now == 25.0
