"""Discrete-event engine semantics."""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(30.0, lambda: fired.append("c"))
    sim.at(10.0, lambda: fired.append("a"))
    sim.at(20.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_same_time_events_fifo():
    sim = Simulator()
    fired = []
    for tag in "abcd":
        sim.at(5.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list("abcd")


def test_after_is_relative():
    sim = Simulator()
    times = []
    sim.at(100.0, lambda: sim.after(50.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [150.0]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.at(5.0, lambda: None)
    with pytest.raises(SchedulingError):
        sim.after(-1.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.at(10.0, lambda: fired.append("x"))
    sim.at(5.0, lambda: event.cancel())
    sim.run()
    assert fired == []
    assert event.cancelled


def test_run_until_horizon():
    sim = Simulator()
    fired = []
    sim.at(10.0, lambda: fired.append(1))
    sim.at(100.0, lambda: fired.append(2))
    sim.run(until=50.0)
    assert fired == [1]
    assert sim.now == 50.0
    sim.run()
    assert fired == [1, 2]


def test_cascading_events():
    sim = Simulator()
    counter = []

    def chain(depth):
        counter.append(depth)
        if depth < 5:
            sim.after(1.0, lambda: chain(depth + 1))

    sim.at(0.0, lambda: chain(0))
    sim.run()
    assert counter == list(range(6))
    assert sim.events_fired == 6  # chain(0) through chain(5)


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.after(1.0, forever)

    sim.at(0.0, forever)
    with pytest.raises(SchedulingError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.at(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False
