"""``python -m repro`` CLI and the cache ls/gc tooling."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.experiments import ExperimentSpec
from repro.experiments.cli import _format_age, _parse_age, main
from repro.harness.cache import ResultCache

RUN_ARGS = [
    "run", "--scheme", "aero", "--pec", "2500", "--workload", "ali.A",
    "--requests", "120", "--seed", "5",
]


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """One executed CLI run with its cache directory."""
    cache_dir = str(tmp_path_factory.mktemp("cli-cache"))
    assert main(RUN_ARGS + ["--cache-dir", cache_dir]) == 0
    return cache_dir


def test_run_executes_then_caches(warm_cache, capsys):
    capsys.readouterr()
    assert main(RUN_ARGS + ["--cache-dir", warm_cache]) == 0
    out = capsys.readouterr().out
    assert "aero" in out and "p99 read" in out
    assert "served from cache: 1" in out
    assert "cells executed: 0" in out


def test_cache_ls_sees_the_entry(warm_cache, capsys):
    assert main(["cache", "ls", "--cache-dir", warm_cache]) == 0
    out = capsys.readouterr().out
    assert "aero pec=2500 ali.A requests=120" in out
    assert "1 entries" in out


def test_cache_ls_json(warm_cache, capsys):
    assert main(["cache", "ls", "--cache-dir", warm_cache, "--json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert len(entries) == 1
    assert entries[0]["meta"]["scheme"] == "aero"
    assert not entries[0]["corrupt"]


def test_run_json_output(warm_cache, capsys):
    assert main(RUN_ARGS + ["--cache-dir", warm_cache, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spec"]["scheme"] == "aero"
    assert payload["report"]["requests_completed"] == 120
    spec = ExperimentSpec.from_dict(payload["spec"])
    assert spec.fingerprint == payload["fingerprint"]


def test_run_from_spec_file(tmp_path, capsys):
    spec = ExperimentSpec(scheme="baseline", pec=500, workload="hm",
                          requests=100, seed=3)
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    assert main(["run", "--spec-file", str(path)]) == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "hm" in out


def test_run_spec_file_rejects_conflicting_flags(tmp_path, capsys):
    path = tmp_path / "spec.json"
    path.write_text(ExperimentSpec(requests=100).to_json())
    assert main(["run", "--spec-file", str(path), "--requests", "50"]) == 2
    err = capsys.readouterr().err
    assert "--spec-file" in err and "--requests" in err


def test_run_flag_defaults_match_parser():
    from repro.experiments.cli import _RUN_FLAG_DEFAULTS, build_parser

    args = build_parser().parse_args(["run"])
    for name, default in _RUN_FLAG_DEFAULTS.items():
        assert getattr(args, name) == default, name


def test_cache_commands_do_not_create_directories(tmp_path, capsys):
    missing = tmp_path / "typo"
    assert main(["cache", "ls", "--cache-dir", str(missing)]) == 2
    assert "no such cache directory" in capsys.readouterr().err
    assert main(["cache", "gc", "--cache-dir", str(missing)]) == 2
    assert not missing.exists()


def test_unknown_scheme_exits_2(capsys):
    assert main(["run", "--scheme", "bogus", "--requests", "10"]) == 2
    err = capsys.readouterr().err
    assert "unknown scheme 'bogus'" in err and "aero" in err


def test_unknown_workload_exits_2(capsys):
    assert main(["run", "--workload", "bogus", "--requests", "10"]) == 2
    assert "unknown workload" in capsys.readouterr().err


def test_grid_smoke(tmp_path, capsys):
    args = [
        "grid", "--schemes", "baseline,aero", "--pecs", "500",
        "--workloads", "hm", "--requests", "100", "--seed", "7",
        "--cache-dir", str(tmp_path),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "geomean" in out and "1.000" in out
    assert main(args) == 0  # warm re-run
    assert "served from cache: 2" in capsys.readouterr().out


def test_grid_without_literal_baseline_scheme(tmp_path, capsys):
    # The first scheme column is the normalization baseline; "baseline"
    # itself need not be in the list.
    assert main([
        "grid", "--schemes", "aero_cons,aero", "--pecs", "500",
        "--workloads", "hm", "--requests", "80", "--seed", "7",
        "--cache-dir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "aero_cons" in out and "geomean" in out


def test_grid_rejects_empty_axis(capsys):
    assert main(["grid", "--schemes", ","]) == 2
    assert "at least one scheme" in capsys.readouterr().err


def test_compare_smoke(capsys):
    assert main([
        "compare", "--schemes", "baseline,aero", "--blocks", "4",
        "--step", "500", "--max-pec", "12000",
    ]) == 0
    out = capsys.readouterr().out
    assert "Lifetime comparison" in out and "vs baseline" in out


def test_compare_engine_and_executor_flags(capsys):
    assert main([
        "compare", "--schemes", "baseline,aero", "--blocks", "4",
        "--step", "500", "--engine", "kernel",
        "--workers", "2", "--executor", "thread",
    ]) == 0
    out = capsys.readouterr().out
    assert "Lifetime comparison" in out


def test_bench_smoke_writes_artifact(tmp_path, capsys):
    artifact = tmp_path / "BENCH_PR5.json"
    assert main([
        "bench", "--smoke", "--out", str(artifact),
        "--blocks", "8", "--step", "500", "--repeats", "1",
        "--schemes", "baseline,aero", "--grid-requests", "60",
        "--grid-repeats", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "lifetime sweep" in out and "grid cell" in out
    payload = json.loads(artifact.read_text())
    assert payload["version"] == 1
    sweep = payload["lifetime_sweep"]
    assert sweep["speedup"] > 0
    assert set(sweep["per_scheme"]) == {"baseline", "aero"}
    cell = payload["grid_cell"]
    assert cell["engine_object"]["median_s"] > 0
    assert cell["engine_kernel"]["median_s"] > 0
    assert cell["speedup"] > 0
    assert payload["config"]["smoke"] is True


def test_cache_gc_prunes_and_reports(tmp_path, capsys):
    cache_dir = str(tmp_path)
    for seed in (1, 2):
        assert main([
            "run", "--scheme", "baseline", "--pec", "500", "--workload", "hm",
            "--requests", "80", "--seed", str(seed), "--cache-dir", cache_dir,
        ]) == 0
    capsys.readouterr()

    # Dry run deletes nothing.
    assert main(["cache", "gc", "--cache-dir", cache_dir,
                 "--max-entries", "1", "--dry-run"]) == 0
    assert "would remove 1" in capsys.readouterr().out
    assert len(ResultCache(cache_dir).entries()) == 2

    # Real gc keeps the newest entry.
    assert main(["cache", "gc", "--cache-dir", cache_dir,
                 "--max-entries", "1"]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert len(ResultCache(cache_dir).entries()) == 1


def test_cache_gc_older_than_and_corrupt(tmp_path, capsys):
    cache_dir = str(tmp_path)
    assert main([
        "run", "--scheme", "baseline", "--pec", "500", "--workload", "hm",
        "--requests", "80", "--seed", "1", "--cache-dir", cache_dir,
    ]) == 0
    corrupt = tmp_path / "deadbeef.json"
    corrupt.write_text("{truncated")
    capsys.readouterr()

    assert main(["cache", "ls", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "<corrupt entry>" in out and "1 corrupt/stale" in out

    # Age out everything: backdate files, prune older than 1h.
    old = time.time() - 7200
    for path in tmp_path.glob("*.json"):
        os.utime(path, (old, old))
    assert main(["cache", "gc", "--cache-dir", cache_dir,
                 "--older-than", "1h"]) == 0
    assert "removed 2" in capsys.readouterr().out
    assert not list(tmp_path.glob("*.json"))


def test_cache_gc_sweeps_orphaned_tmp_files(tmp_path, capsys):
    orphan = tmp_path / "abc123.tmp.9999"
    orphan.write_text("partial write")
    old = time.time() - 300
    os.utime(orphan, (old, old))
    assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                 "--dry-run"]) == 0
    assert "would sweep 1 orphaned tmp" in capsys.readouterr().out
    assert orphan.exists()
    assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
    assert "swept 1 orphaned tmp" in capsys.readouterr().out
    assert not orphan.exists()


def test_parse_age_units():
    assert _parse_age("90") == 90.0
    assert _parse_age("90s") == 90.0
    assert _parse_age("15m") == 900.0
    assert _parse_age("2h") == 7200.0
    assert _parse_age("7d") == 7 * 86400.0
    with pytest.raises(Exception):
        _parse_age("soon")


def test_format_age_units():
    assert _format_age(30) == "30s"
    assert _format_age(90) == "1.5m"
    assert _format_age(7200) == "2.0h"
    assert _format_age(2 * 86400) == "2.0d"


def test_python_dash_m_entry_point():
    """The real subprocess entry (`python -m repro`) wires up."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0
    for command in ("run", "grid", "compare", "cache"):
        assert command in proc.stdout


# --- campaign ----------------------------------------------------------------

CAMPAIGN_ARGS = [
    "campaign", "run",
    "--schemes", "baseline,aero", "--pecs", "500",
    "--workloads", "hm", "--requests", "120", "--seed", "1234",
]


def test_campaign_run_executes_then_resumes(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(CAMPAIGN_ARGS + ["--store", store]) == 0
    out = capsys.readouterr().out
    assert "campaign complete: 2 cells" in out
    assert "executed 2" in out
    assert "[campaign]" in out  # live progress lines

    assert main(CAMPAIGN_ARGS + ["--store", store]) == 0
    out = capsys.readouterr().out
    assert "resumed 2" in out


def test_campaign_run_json_stats(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(
        CAMPAIGN_ARGS + ["--store", store, "--quiet", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["total"] == 2
    assert payload["stats"]["executed"] == 2
    assert payload["spec"]["schemes"] == ["baseline", "aero"]


def test_campaign_run_from_spec_file(tmp_path, capsys):
    from repro.campaign import CampaignSpec

    spec = CampaignSpec(
        schemes=("baseline",), pec_points=(500,), workloads=("hm",),
        requests=120, seed=1234,
    )
    spec_file = tmp_path / "campaign.json"
    spec_file.write_text(spec.to_json())
    store = str(tmp_path / "store")
    assert main(
        ["campaign", "run", "--store", store, "--spec-file", str(spec_file)]
    ) == 0
    assert "1 cells" in capsys.readouterr().out

    # status against the same spec file reports completion
    assert main(
        ["campaign", "status", "--store", store,
         "--spec-file", str(spec_file)]
    ) == 0
    out = capsys.readouterr().out
    assert "1/1 cells done" in out
    assert "1 entries" in out


def test_campaign_spec_file_rejects_conflicting_flags(tmp_path, capsys):
    spec_file = tmp_path / "campaign.json"
    spec_file.write_text('{"schemes": ["baseline"]}')
    code = main(
        ["campaign", "run", "--store", str(tmp_path / "s"),
         "--spec-file", str(spec_file), "--requests", "99"]
    )
    assert code == 2
    assert "--requests" in capsys.readouterr().err


def test_campaign_fail_after_then_resume(tmp_path, capsys):
    store = str(tmp_path / "store")
    with pytest.raises(RuntimeError, match="injected failure"):
        main(CAMPAIGN_ARGS + ["--store", store, "--fail-after", "1",
                              "--quiet"])
    capsys.readouterr()
    assert main(CAMPAIGN_ARGS + ["--store", store]) == 0
    out = capsys.readouterr().out
    assert "resumed 1" in out
    assert "executed 1" in out


def test_campaign_compact_reports(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert main(CAMPAIGN_ARGS + ["--store", store, "--quiet"]) == 0
    capsys.readouterr()
    assert main(["campaign", "compact", "--store", store]) == 0
    assert "dropped 0 dead records" in capsys.readouterr().out
    # gc knobs route through the store's gc surface
    assert main(
        ["campaign", "compact", "--store", store, "--max-entries", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "removed 1 entries" in out
    assert "kept 1" in out


def test_campaign_status_requires_existing_store(tmp_path, capsys):
    assert main(
        ["campaign", "status", "--store", str(tmp_path / "nope")]
    ) == 2
    assert "no such store" in capsys.readouterr().err


def test_campaign_run_with_fault_plan_recovers(tmp_path, capsys):
    """The CLI chaos smoke: a kill_worker fault is retried and the
    campaign still exits 0 with a supervision summary."""
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps({
        "fault_plan": {
            "seed": 3,
            "faults": [
                {"kind": "kill_worker", "cell": 0, "attempt": 1},
            ],
        },
    }))
    assert main(CAMPAIGN_ARGS + [
        "--store", str(tmp_path / "store"),
        "--fault-plan", str(plan_path),
        "--max-retries", "2", "--cell-timeout", "120",
        "--engine", "object",
    ]) == 0
    out = capsys.readouterr().out
    assert "campaign complete: 2 cells" in out
    assert "supervision: 1 retries" in out
    assert "1 worker rebuilds" in out


def test_campaign_run_on_poison_fail_exits_2(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps({
        "seed": 3,
        "faults": [{"kind": "kill_worker", "cell": 0, "attempt": None}],
    }))
    assert main(CAMPAIGN_ARGS + [
        "--store", str(tmp_path / "store"),
        "--fault-plan", str(plan_path),
        "--max-retries", "0", "--on-poison", "fail",
        "--engine", "object",
    ]) == 2
    assert "quarantined after 1 attempts" in capsys.readouterr().err


def test_campaign_run_quarantine_reported(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps({
        "seed": 3,
        "faults": [{"kind": "kill_worker", "cell": 0, "attempt": None}],
    }))
    assert main(CAMPAIGN_ARGS + [
        "--store", str(tmp_path / "store"),
        "--fault-plan", str(plan_path),
        "--max-retries", "1", "--engine", "object",
        "--quiet", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["quarantined"] == 1
    assert payload["stats"]["executed"] == 1
    [record] = payload["quarantined"]
    assert record["reason"] == "worker_death"


def test_campaign_run_rejects_bad_fault_plan(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps({
        "faults": [{"kind": "meteor_strike"}],
    }))
    assert main(CAMPAIGN_ARGS + [
        "--store", str(tmp_path / "store"),
        "--fault-plan", str(plan_path),
    ]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(CAMPAIGN_ARGS + [
        "--store", str(tmp_path / "store2"),
        "--fault-plan", str(tmp_path / "missing.json"),
    ]) == 2
    assert "error:" in capsys.readouterr().err
