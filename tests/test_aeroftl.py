"""AEROFTL: SEF management and feature-command accounting."""

import pytest

from repro.config import SsdSpec
from repro.core.aero import AeroEraseScheme
from repro.erase.ispe import BaselineIspeScheme
from repro.errors import ConfigError
from repro.ftl.aeroftl import AeroFtl
from repro.nand.chip import NandChip


def build_aero_ftl(spec: SsdSpec, aggressive=True):
    geometry = spec.geometry
    chips = [
        NandChip(
            channel=channel, chip=chip, profile=spec.profile,
            planes=geometry.planes_per_chip,
            blocks_per_plane=geometry.blocks_per_plane,
            pages_per_block=geometry.pages_per_block,
            seed=spec.seed,
        )
        for channel in range(geometry.channels)
        for chip in range(geometry.chips_per_channel)
    ]
    scheme = AeroEraseScheme(spec.profile, aggressive=aggressive)
    return AeroFtl(spec, chips, scheme)


def test_requires_aero_scheme(small_spec):
    geometry = small_spec.geometry
    chips = [
        NandChip(0, 0, small_spec.profile, geometry.planes_per_chip,
                 geometry.blocks_per_plane, geometry.pages_per_block, 1)
    ]
    with pytest.raises(ConfigError):
        AeroFtl(small_spec, chips, BaselineIspeScheme(small_spec.profile))


def test_sef_covers_all_blocks(small_spec):
    ftl = build_aero_ftl(small_spec)
    assert len(ftl.sef) == small_spec.geometry.blocks
    assert ftl.sef.enabled_count == small_spec.geometry.blocks


def test_erases_drive_sef_and_feature_commands(small_spec):
    ftl = build_aero_ftl(small_spec)
    for round_index in range(3):
        for lpn in range(small_spec.logical_pages):
            ftl.write(lpn)
    assert ftl.stats.erases > 0
    # Shallow probes and reduced pulses issue SET FEATURE commands;
    # every verify-read issues a GET FEATURE.
    assert ftl.set_feature_commands > 0
    assert ftl.get_feature_commands >= ftl.stats.erases
    ftl.check_consistency()


def test_sef_disabled_for_hard_blocks(small_spec):
    ftl = build_aero_ftl(small_spec)
    # Age every block so first loops can't be shortened.
    for chip in ftl._chips.values():
        for block in chip.iter_blocks():
            block.wear.age_kilocycles = 3.0
            block.wear.pec = 3000
    for round_index in range(3):
        for lpn in range(small_spec.logical_pages):
            ftl.write(lpn)
    assert ftl.sef.disabled_count > 0


def test_overhead_report(small_spec):
    ftl = build_aero_ftl(small_spec)
    for round_index in range(2):
        for lpn in range(small_spec.logical_pages):
            ftl.write(lpn)
    report = ftl.overhead_report()
    assert report["ept_bytes"] <= 256          # paper: 140 B
    assert report["sef_fraction_of_capacity"] < 1e-4
    assert report["erases"] == ftl.stats.erases


def test_ept_property_is_conservative_table(small_spec):
    ftl = build_aero_ftl(small_spec)
    assert not ftl.ept.aggressive
    assert ftl.ept.loops == small_spec.profile.max_loops
