"""NAND geometry and addressing."""

import pytest

from repro.errors import AddressError, ConfigError
from repro.nand.geometry import BlockAddress, NandGeometry, PageAddress, PlaneAddress


@pytest.fixture
def geometry():
    return NandGeometry(
        channels=2,
        chips_per_channel=2,
        planes_per_chip=2,
        blocks_per_plane=4,
        pages_per_block=8,
        page_size=4096,
    )


def test_table2_defaults_match_paper():
    geometry = NandGeometry()
    assert geometry.channels == 8
    assert geometry.chips_per_channel == 2
    assert geometry.planes_per_chip == 4
    assert geometry.blocks_per_plane == 497
    assert geometry.pages_per_block == 2112
    assert geometry.page_size == 16 * 1024
    # 1024 GB-class raw capacity (Table 2).
    assert geometry.capacity_bytes > 1000 * 1024 ** 3


def test_derived_counts(geometry):
    assert geometry.chips == 4
    assert geometry.planes == 8
    assert geometry.blocks == 32
    assert geometry.pages == 256
    assert geometry.block_bytes == 8 * 4096


def test_rejects_nonpositive_fields():
    with pytest.raises(ConfigError):
        NandGeometry(channels=0)
    with pytest.raises(ConfigError):
        NandGeometry(pages_per_block=-1)


def test_block_index_round_trip(geometry):
    seen = set()
    for address in geometry.iter_block_addresses():
        index = geometry.block_index(address)
        assert geometry.block_from_index(index) == address
        seen.add(index)
    assert seen == set(range(geometry.blocks))


def test_page_index_round_trip(geometry):
    address = PageAddress(1, 0, 1, 3, 7)
    index = geometry.page_index(address)
    assert geometry.page_from_index(index) == address


def test_out_of_range_rejected(geometry):
    with pytest.raises(AddressError):
        geometry.check_block(BlockAddress(2, 0, 0, 0))
    with pytest.raises(AddressError):
        geometry.check_page(PageAddress(0, 0, 0, 0, 8))
    with pytest.raises(AddressError):
        geometry.block_from_index(geometry.blocks)
    with pytest.raises(AddressError):
        geometry.page_from_index(-1)


def test_address_navigation():
    block = BlockAddress(1, 0, 2, 3)
    page = block.page(5)
    assert page.block_address == block
    assert page.plane_address == PlaneAddress(1, 0, 2)
    assert "blk3" in str(block)
    assert "pg5" in str(page)


def test_addresses_are_ordered_and_hashable():
    a = BlockAddress(0, 0, 0, 1)
    b = BlockAddress(0, 0, 0, 2)
    assert a < b
    assert len({a, b, BlockAddress(0, 0, 0, 1)}) == 2
