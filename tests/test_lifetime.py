"""Lifetime simulation (Figure 13 methodology) — scaled-down checks."""

import pytest

from repro.errors import ConfigError
from repro.lifetime import LifetimeSimulator, compare_schemes
from repro.nand.chip_types import TLC_3D_48L


@pytest.fixture(scope="module")
def comparison():
    """One shared five-scheme campaign (module-scoped: it's the slow one)."""
    return compare_schemes(TLC_3D_48L, block_count=24, step=100, seed=4)


def test_all_schemes_cross_requirement(comparison):
    for key, curve in comparison.curves.items():
        assert curve.lifetime_pec is not None, key
        assert curve.avg_mrber[-1] > curve.requirement


def test_figure13_ordering(comparison):
    """AERO > AEROcons ~ DPES > Baseline > i-ISPE."""
    life = {key: comparison.lifetime(key) for key in comparison.curves}
    assert life["aero"] > life["aero_cons"]
    assert life["aero_cons"] > life["baseline"]
    assert life["dpes"] > life["baseline"]
    assert life["iispe"] < life["baseline"]


def test_figure13_magnitudes(comparison):
    """Improvements in the paper's neighbourhood (+43/+30/+26/-25 %)."""
    assert 0.25 <= comparison.improvement("aero") <= 0.75
    assert 0.10 <= comparison.improvement("aero_cons") <= 0.45
    assert 0.08 <= comparison.improvement("dpes") <= 0.40
    assert -0.45 <= comparison.improvement("iispe") <= -0.10


def test_baseline_lifetime_near_calibration(comparison):
    """Figure 13: Baseline fails around 5.3K PEC."""
    assert 4500 <= comparison.lifetime("baseline") <= 6200


def test_aero_elevated_initial_mrber(comparison):
    """Aggressive under-erasure raises MRBER from the very start."""
    aero = comparison.curves["aero"]
    baseline = comparison.curves["baseline"]
    assert aero.mrber_at(500) > baseline.mrber_at(500) + 5


def test_dpes_elevated_early_then_flat(comparison):
    dpes = comparison.curves["dpes"]
    baseline = comparison.curves["baseline"]
    assert dpes.mrber_at(1000) > baseline.mrber_at(1000)


def test_curve_helpers(comparison):
    from repro.lifetime.simulator import LifetimeCurve

    curve = comparison.curves["baseline"]
    assert curve.initial_mrber < curve.avg_mrber[-1]
    with pytest.raises(ConfigError):
        LifetimeCurve(scheme="empty").mrber_at(0)
    with pytest.raises(ConfigError):
        LifetimeCurve(scheme="x").improvement_over(curve)


def test_ranking(comparison):
    ranking = comparison.ranking()
    assert ranking[0] == "aero"
    assert ranking[-1] == "iispe"


def test_simulator_validation():
    with pytest.raises(ConfigError):
        LifetimeSimulator(TLC_3D_48L, "baseline", block_count=0)


def test_misprediction_degrades_gracefully():
    """Figure 16: even 20 % misprediction keeps most of the benefit."""
    clean = LifetimeSimulator(
        TLC_3D_48L, "aero", block_count=16, step=100, seed=8
    ).run()
    noisy = LifetimeSimulator(
        TLC_3D_48L, "aero", block_count=16, step=100, seed=8, mispredict_rate=0.2
    ).run()
    base = LifetimeSimulator(
        TLC_3D_48L, "baseline", block_count=16, step=100, seed=8
    ).run()
    assert noisy.lifetime_pec <= clean.lifetime_pec
    assert noisy.lifetime_pec > base.lifetime_pec  # benefit survives


def test_requirement_sensitivity_shrinks_lifetimes():
    """Figure 17: weaker ECC costs every scheme lifetime."""
    strict = LifetimeSimulator(
        TLC_3D_48L, "baseline", block_count=16, step=100, seed=8, requirement=40
    ).run()
    loose = LifetimeSimulator(
        TLC_3D_48L, "baseline", block_count=16, step=100, seed=8, requirement=63
    ).run()
    assert strict.lifetime_pec < loose.lifetime_pec
