"""Percentiles, CDFs, and table rendering."""

import pytest

from repro.analysis import Cdf, exact_percentile, format_table, tail_summary
from repro.errors import ConfigError


class TestPercentiles:
    def test_exact_percentile(self):
        samples = list(range(1, 101))
        assert exact_percentile(samples, 50.0) == pytest.approx(50.5)
        assert exact_percentile(samples, 100.0) == 100.0
        assert exact_percentile(samples, 0.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            exact_percentile([], 50.0)
        with pytest.raises(ConfigError):
            exact_percentile([1.0], 101.0)

    def test_tail_summary(self):
        summary = tail_summary([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == 2.5
        assert summary["max"] == 4.0
        assert "p99.9" in summary


class TestCdf:
    def test_at_and_quantile(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(10.0) == 1.0
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 4.0
        assert cdf.min == 1.0 and cdf.max == 4.0

    def test_points_grid(self):
        cdf = Cdf([1.0, 2.0, 3.0])
        points = cdf.points([0.0, 2.0, 5.0])
        assert points == [(0.0, 0.0), (2.0, pytest.approx(2 / 3)), (5.0, 1.0)]

    def test_validation(self):
        with pytest.raises(ConfigError):
            Cdf([])
        with pytest.raises(ConfigError):
            Cdf([1.0]).quantile(1.5)


class TestTables:
    def test_renders_aligned(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["beta", 12345.6]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1]
        assert "12,346" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [42.0], [0]])
        assert "0.123" in text
