"""SSD simulator: channel bus, chip executor, end-to-end replay."""

import pytest

from repro.config import SsdSpec
from repro.errors import SimulationError
from repro.ssd.builder import build_ssd
from repro.ssd.channel import ChannelBus
from repro.ssd.metrics import LatencyRecorder, normalize
from repro.workloads import SyntheticTraceGenerator, Trace, TraceRequest, profile_by_abbr


class TestChannelBus:
    def test_idle_bus_transfer(self):
        bus = ChannelBus(0, transfer_us_per_page=10.0)
        assert bus.reserve(now=100.0) == pytest.approx(10.0)
        assert bus.busy_until == pytest.approx(110.0)

    def test_contention_queues(self):
        bus = ChannelBus(0, transfer_us_per_page=10.0)
        bus.reserve(now=0.0)
        delay = bus.reserve(now=0.0)
        assert delay == pytest.approx(20.0)  # waits 10, transfers 10

    def test_multi_page(self):
        bus = ChannelBus(0, transfer_us_per_page=10.0)
        assert bus.reserve(now=0.0, pages=3) == pytest.approx(30.0)
        assert bus.transfers == 3

    def test_utilization(self):
        bus = ChannelBus(0, transfer_us_per_page=10.0)
        bus.reserve(0.0)
        assert bus.utilization(100.0) == pytest.approx(0.1)


class TestLatencyRecorder:
    def test_summary(self):
        recorder = LatencyRecorder("read")
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.mean_us == pytest.approx(50.5)
        assert recorder.percentile(99.0) == pytest.approx(99.01, abs=0.5)
        assert recorder.max_us == 100.0
        summary = recorder.summary()
        assert summary["count"] == 100

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            LatencyRecorder("x").record(-1.0)

    def test_normalize_guard(self):
        assert normalize(5.0, 10.0) == 0.5
        assert normalize(0.0, 0.0) == 0.0


class TestTraceReplay:
    @pytest.fixture(scope="class")
    def replayed(self):
        spec = SsdSpec.small_test()
        ssd = build_ssd(spec, "baseline", pec_setpoint=500)
        ssd.precondition(footprint_pages=int(spec.logical_pages * 0.85))
        generator = SyntheticTraceGenerator(
            profile_by_abbr("hm"),
            footprint_bytes=int(spec.logical_bytes * 0.8),
            seed=21,
        )
        trace = generator.generate(400)
        report = ssd.run_trace(trace)
        return spec, ssd, trace, report

    def test_all_requests_complete(self, replayed):
        spec, ssd, trace, report = replayed
        assert report.requests_completed == len(trace)
        assert len(report.reads) + len(report.writes) == len(trace)

    def test_read_latency_floor(self, replayed):
        """No read can beat overhead + tR + transfer + decode."""
        spec, ssd, trace, report = replayed
        if len(report.reads):
            floor = spec.controller_overhead_us  # unmapped reads only
            assert min(report.reads.values) >= floor

    def test_makespan_covers_trace(self, replayed):
        spec, ssd, trace, report = replayed
        assert report.makespan_us >= trace.duration_us
        assert report.iops > 0

    def test_state_consistent_after_replay(self, replayed):
        spec, ssd, trace, report = replayed
        ssd.ftl.check_consistency()

    def test_erases_happened_under_write_load(self, replayed):
        spec, ssd, trace, report = replayed
        assert report.erases > 0
        assert report.erase_busy_us > 0


class TestEraseSuspension:
    def _run(self, suspension: bool):
        spec = SsdSpec.small_test(seed=77).with_scheduler(
            erase_suspension=suspension
        )
        ssd = build_ssd(spec, "baseline", pec_setpoint=2500)
        ssd.precondition(footprint_pages=int(spec.logical_pages * 0.9))
        generator = SyntheticTraceGenerator(
            profile_by_abbr("prxy"),
            footprint_bytes=int(spec.logical_bytes * 0.85),
            seed=9,
        )
        return ssd.run_trace(generator.generate(600))

    def test_suspension_reduces_read_tail(self):
        with_suspend = self._run(True)
        without = self._run(False)
        assert with_suspend.erase_suspensions > 0
        assert without.erase_suspensions == 0
        # Suspension protects reads from multi-ms erase blocking.
        assert with_suspend.reads.percentile(99.0) < without.reads.percentile(99.0)


class TestBuilder:
    def test_pec_setpoint_applied(self):
        spec = SsdSpec.small_test()
        ssd = build_ssd(spec, "baseline", pec_setpoint=2500)
        ages = [
            block.wear.age_kilocycles
            for chip in ssd.chips
            for block in chip.iter_blocks()
        ]
        assert min(ages) > 2.2 and max(ages) < 2.8
        assert all(
            block.wear.pec == 2500
            for chip in ssd.chips
            for block in chip.iter_blocks()
        )

    def test_iispe_warmup(self):
        spec = SsdSpec.small_test()
        ssd = build_ssd(spec, "iispe", pec_setpoint=2500)
        scheme = ssd.scheme
        block = next(ssd.chips[0].iter_blocks())
        assert scheme.memorized_loop(block) >= 2

    def test_aero_gets_aero_ftl(self):
        from repro.ftl.aeroftl import AeroFtl

        spec = SsdSpec.small_test()
        ssd = build_ssd(spec, "aero", pec_setpoint=500)
        assert isinstance(ssd.ftl, AeroFtl)

    def test_unknown_scheme_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            build_ssd(SsdSpec.small_test(), "bogus")


class TestSchemeTailOrdering:
    def test_aero_tail_not_worse_than_baseline(self):
        """The paper's core performance claim at low PEC, bench-scale."""
        results = {}
        for key in ("baseline", "aero"):
            spec = SsdSpec.small_test(seed=5)
            ssd = build_ssd(spec, key, pec_setpoint=500)
            ssd.precondition(footprint_pages=int(spec.logical_pages * 0.9))
            generator = SyntheticTraceGenerator(
                profile_by_abbr("ali.A"),
                footprint_bytes=int(spec.logical_bytes * 0.85),
                seed=31,
            )
            report = ssd.run_trace(generator.generate(500))
            results[key] = report.reads.percentile(99.0)
        assert results["aero"] <= results["baseline"] * 1.05
