"""Unit conversions."""

import pytest

from repro import units


def test_time_constructors():
    assert units.us(1) == 1.0
    assert units.ms(1) == 1000.0
    assert units.sec(1) == 1_000_000.0
    assert units.ms(3.5) == 3500.0


def test_time_round_trips():
    assert units.to_ms(units.ms(7.25)) == pytest.approx(7.25)
    assert units.to_sec(units.sec(0.5)) == pytest.approx(0.5)


def test_hour_constant():
    assert units.HOUR == 3600 * units.SEC


def test_size_constructors():
    assert units.kib(16) == 16 * 1024
    assert units.mib(2) == 2 * 1024 * 1024
    assert units.gib(1) == 1024 ** 3


def test_sectors_for_rounds_up():
    assert units.sectors_for(1) == 1
    assert units.sectors_for(512) == 1
    assert units.sectors_for(513) == 2
    assert units.sectors_for(16384) == 32


def test_sector_size_is_512():
    assert units.SECTOR_BYTES == 512
