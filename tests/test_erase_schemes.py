"""Baseline, m-ISPE, i-ISPE and DPES erase schemes."""

import pytest

from repro.erase.dpes import (
    APPLICABLE_PEC_LIMIT,
    DpesScheme,
    T_PROG_SCALE_EARLY,
    T_PROG_SCALE_LATE,
)
from repro.erase.iispe import IntelligentIspeScheme
from repro.erase.ispe import BaselineIspeScheme
from repro.erase.mispe import MIspeScheme
from repro.erase.scheme import SegmentKind
from tests.conftest import make_block


class TestBaselineIspe:
    def test_single_loop_at_fresh(self, profile, rng):
        block = make_block(profile, age_kilocycles=0.0)
        result = BaselineIspeScheme(profile).erase(block, rng)
        assert result.completed
        assert result.loops == 1
        assert result.total_pulses == 7
        # tBERS = (tEP + tVR) * NISPE, Equation (1).
        assert result.latency_us == pytest.approx(profile.t_ep_us + profile.t_vr_us)

    def test_multi_loop_when_worn(self, profile, rng):
        block = make_block(profile, age_kilocycles=3.0)
        result = BaselineIspeScheme(profile).erase(block, rng)
        assert result.completed
        assert result.loops >= 2
        assert result.latency_us == pytest.approx(
            result.loops * (profile.t_ep_us + profile.t_vr_us)
        )

    def test_full_pulse_every_loop(self, profile, rng):
        block = make_block(profile, age_kilocycles=4.0)
        result = BaselineIspeScheme(profile).erase(block, rng)
        pulses = [s for s in result.segments if s.kind is SegmentKind.ERASE_PULSE]
        assert all(s.pulses == 7 for s in pulses)

    def test_cycles_multiplier(self, profile, rng):
        block = make_block(profile)
        BaselineIspeScheme(profile).erase(block, rng, cycles=100)
        assert block.wear.pec == 100
        assert block.wear.age_kilocycles == pytest.approx(0.1, rel=1e-6)


class TestMIspe:
    def test_measures_minimum_latency(self, profile, rng):
        block = make_block(profile, age_kilocycles=2.5)
        reference = block.erase_model.deterministic_pulses(2.5)
        measurement = MIspeScheme(profile).measure(block, rng)
        # The measured work equals the model's requirement (+- jitter).
        assert abs(measurement.short_loops - reference) <= 2
        assert measurement.nispe == (measurement.short_loops + 6) // 7

    def test_trace_is_monotonically_decreasing_to_pass(self, profile, rng):
        block = make_block(profile, age_kilocycles=1.0)
        measurement = MIspeScheme(profile).measure(block, rng)
        trace = measurement.fail_bits_per_pulse
        assert trace[-1] <= profile.f_pass
        # Broad monotone decrease (noise-tolerant): first third vs last.
        if len(trace) >= 4:
            assert trace[0] >= trace[-2]

    def test_mtep_formula(self, profile, rng):
        block = make_block(profile, age_kilocycles=3.0)
        m = MIspeScheme(profile).measure(block, rng)
        expected = (1 + (m.short_loops - 1) % 7) * profile.pulse_quantum_us
        assert m.min_t_ep_final_us == expected


class TestIntelligentIspe:
    def test_first_erase_behaves_like_baseline(self, profile, rng):
        block = make_block(profile, age_kilocycles=0.0)
        scheme = IntelligentIspeScheme(profile)
        result = scheme.erase(block, rng)
        assert result.completed
        assert scheme.memorized_loop(block) == result.loops

    def test_jump_skips_early_loops(self, profile, rng):
        block = make_block(profile, age_kilocycles=3.0)
        scheme = IntelligentIspeScheme(profile)
        scheme._memorized_loop[block.address] = 3
        result = scheme.erase(block, rng)
        assert result.completed
        first_pulse = next(
            s for s in result.segments if s.kind is SegmentKind.ERASE_PULSE
        )
        assert first_pulse.loop == 3

    def test_stale_memory_escalates_voltage(self, profile, rng):
        """A jump that fails pushes VERASE above what ISPE would use."""
        block = make_block(profile, age_kilocycles=4.0)
        nispe_now = block.erase_model.nispe(4.0)
        scheme = IntelligentIspeScheme(profile)
        scheme._memorized_loop[block.address] = nispe_now
        result = scheme.erase(block, rng)
        assert result.completed
        # Partial voltage credit on 3D chips often forces an extra loop.
        assert result.loops >= nispe_now

    def test_jump_damage_exceeds_gentle_ladder_at_high_wear(self, profile, rng):
        age = 4.0
        block_i = make_block(profile, age_kilocycles=age, seed=500)
        block_b = make_block(profile, age_kilocycles=age, seed=500)
        from repro.erase.ispe import BaselineIspeScheme

        iispe = IntelligentIspeScheme(profile)
        iispe._memorized_loop[block_i.address] = block_i.erase_model.nispe(age)
        damage_i = iispe.erase(block_i, rng).damage
        damage_b = BaselineIspeScheme(profile).erase(block_b, rng).damage
        assert damage_i > damage_b

    def test_reset_memory(self, profile, rng):
        scheme = IntelligentIspeScheme(profile)
        block = make_block(profile)
        scheme.erase(block, rng)
        scheme.reset_memory()
        assert scheme.memorized_loop(block) == 1


class TestDpes:
    def test_active_reduces_damage(self, profile, rng):
        block_d = make_block(profile, age_kilocycles=1.0, seed=9)
        block_b = make_block(profile, age_kilocycles=1.0, seed=9)
        from repro.erase.ispe import BaselineIspeScheme

        damage_d = DpesScheme(profile).erase(block_d, rng).damage
        damage_b = BaselineIspeScheme(profile).erase(block_b, rng).damage
        assert damage_d < 0.7 * damage_b

    def test_program_penalty_schedule(self, profile):
        scheme = DpesScheme(profile)
        young = make_block(profile, age_kilocycles=0.5)
        assert scheme.program_scale(young) == T_PROG_SCALE_EARLY
        mid = make_block(profile, age_kilocycles=2.5)
        assert scheme.program_scale(mid) == T_PROG_SCALE_LATE
        old = make_block(profile, age_kilocycles=4.0)
        assert scheme.program_scale(old) == 1.0

    def test_inactive_past_3k_pec(self, profile, rng):
        block = make_block(profile, age_kilocycles=APPLICABLE_PEC_LIMIT / 1000 + 0.5)
        scheme = DpesScheme(profile)
        assert not scheme.is_active(block)
        result = scheme.erase(block, rng)
        assert result.rber_offset == 0.0
        assert result.t_prog_scale == 1.0

    def test_active_sets_rber_offset(self, profile, rng):
        block = make_block(profile, age_kilocycles=1.0)
        result = DpesScheme(profile).erase(block, rng)
        assert result.rber_offset > 0
