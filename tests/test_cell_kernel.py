"""Cell replay kernel: engine equivalence, gating, and the PR-5 fixes."""

import dataclasses

import pytest

from repro.config import SsdSpec
from repro.errors import ConfigError
from repro.harness.cache import CACHE_VERSION, ResultCache
from repro.harness.cells import PAPER_SCHEMES, run_workload_cell
from repro.harness.runner import CellJob
from repro.kernels import (
    kernel_replay_supported,
    precondition_kernel,
    run_trace_kernel,
)
from repro.rng import derive
from repro.ssd.builder import build_ssd
from repro.workloads.profiles import profile_by_abbr
from repro.workloads.synthetic import SyntheticTraceGenerator


def _cell(scheme, workload, engine, requests=200):
    return run_workload_cell(
        scheme, 2500, workload, requests=requests, engine=engine
    )


class TestEngineEquivalence:
    """The kernel replay must be report-identical, not just close."""

    @pytest.mark.parametrize("scheme", PAPER_SCHEMES)
    def test_reports_bit_identical_per_scheme(self, scheme):
        obj = _cell(scheme, "ali.A", "object")
        ker = _cell(scheme, "ali.A", "kernel")
        assert ker.to_json_dict() == obj.to_json_dict()

    @pytest.mark.parametrize("workload", ["ali.B", "rsrch"])
    def test_reports_bit_identical_per_workload(self, workload):
        obj = _cell("aero", workload, "object")
        ker = _cell("aero", workload, "kernel")
        assert ker.to_json_dict() == obj.to_json_dict()

    def test_auto_matches_object(self):
        auto = _cell("aero", "ali.A", "auto", requests=120)
        obj = _cell("aero", "ali.A", "object", requests=120)
        assert auto.to_json_dict() == obj.to_json_dict()

    def test_device_state_written_back(self):
        """After a kernel replay the real FTL holds the final mapping."""
        spec = SsdSpec.small_test(seed=0xAE20)
        spec = spec.with_scheduler(erase_suspension=True)

        def final_stats(engine):
            ssd = build_ssd(spec, "aero", pec_setpoint=2500)
            footprint = int(spec.logical_pages * 0.9)
            generator = SyntheticTraceGenerator(
                profile_by_abbr("ali.A"),
                footprint_bytes=int(spec.logical_bytes * 0.85),
                seed=derive(0xAE20, "trace", "ali.A", 2500),
            )
            trace = generator.generate(200)
            if engine == "kernel":
                lean = precondition_kernel(ssd, footprint, write_back=False)
                run_trace_kernel(ssd, trace, lean=lean)
            else:
                ssd.precondition(footprint_pages=footprint)
                ssd.run_trace(trace)
            stats = ssd.ftl.stats
            mapping = [
                ssd.ftl.mapping.lookup(lpn)
                for lpn in range(spec.logical_pages)
            ]
            return (
                mapping,
                stats.host_writes,
                stats.gc_page_moves,
                stats.erases,
                stats.host_reads,
            )

        assert final_stats("kernel") == final_stats("object")


class TestEngineGating:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            _cell("aero", "ali.A", "warp")

    def test_kernel_engine_requires_support(self):
        ssd = build_ssd(SsdSpec.small_test(), "aero", pec_setpoint=2500)
        assert kernel_replay_supported(ssd)

    def test_fingerprint_ignores_engine(self):
        """Both engines share one cache entry (reports are identical)."""
        base = CellJob(
            scheme="aero", pec=2500, workload="ali.A",
            spec=SsdSpec.small_test(), requests=600,
            erase_suspension=True, seed=0xAE20,
        )
        for engine in ("object", "kernel"):
            variant = dataclasses.replace(base, engine=engine)
            assert variant.fingerprint == base.fingerprint
        # The fingerprint still separates inputs that do change reports.
        assert (
            dataclasses.replace(base, requests=601).fingerprint
            != base.fingerprint
        )


class TestPr5Regressions:
    def test_suspended_erase_resumes_before_new_erase(self):
        """ChipExecutor must resume the suspended erase before starting
        a queued one; otherwise read storms interleave two erases and
        the older erase starves past its FIFO turn."""
        from test_scheduler_edges import erase_txn, make_executor, read_txn
        from repro.ssd.request import TxnKind

        sim, executor, done = make_executor()
        first = erase_txn()
        second = erase_txn()
        executor.submit(first)
        # Suspend the first erase with a read, then queue a second
        # erase while the first is parked.
        sim.at(1000.0, lambda: executor.submit(read_txn()))
        sim.at(1100.0, lambda: executor.submit(second))
        sim.run()
        assert executor.erase_suspensions == 1
        assert [txn.kind for txn in done] == [
            TxnKind.READ, TxnKind.ERASE, TxnKind.ERASE,
        ]
        assert done[1] is first
        assert done[2] is second

    def test_truncated_replay_does_not_inherit_full_horizon(self):
        """makespan of a truncated replay floors at the replayed slice's
        horizon, not the full trace's duration."""
        spec = SsdSpec.small_test(seed=7)
        ssd = build_ssd(spec, "baseline", pec_setpoint=500)
        ssd.precondition(footprint_pages=int(spec.logical_pages * 0.5))
        generator = SyntheticTraceGenerator(
            profile_by_abbr("ali.A"),
            footprint_bytes=int(spec.logical_bytes * 0.5),
            seed=3,
        )
        trace = generator.generate(400)
        report = ssd.run_trace(trace, max_requests=40)
        assert report.requests_completed == 40
        sliced_horizon = trace.requests[39].arrival_us
        assert report.makespan_us >= sliced_horizon
        assert report.makespan_us < trace.duration_us

    def test_cache_len_counts_healthy_entries_only(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = _cell("baseline", "ali.A", "kernel", requests=60)
        cache.put("good", report)
        assert len(cache) == 1
        # Corrupt file and stale-version entry both read as misses.
        (tmp_path / "bad.json").write_text("{trunca")
        cache.put("old", report)
        path = cache.path("old")
        stale = path.read_text().replace(
            f'"version": {CACHE_VERSION}', '"version": 1'
        )
        path.write_text(stale)
        assert cache.get("bad") is None
        assert cache.get("old") is None
        assert len(cache) == 1
