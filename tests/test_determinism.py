"""Determinism and cache regressions for the evaluation harness.

The parallel runner and the result cache are only safe because every
cell is a pure function of its inputs; these tests pin that property:
same seed -> identical report, process grid == serial grid
cell-for-cell, cached report == recomputed report, and a warm cache
replays a campaign without executing anything.
"""

import pytest

from repro.harness import (
    GridRunner,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    ThreadExecutor,
    cell_fingerprint,
    run_grid,
    run_workload_cell,
)
from repro.config import SsdSpec
from repro.ssd.metrics import LatencyRecorder, PerfReport

GRID_KWARGS = dict(
    schemes=("baseline", "aero"),
    pec_points=(500,),
    workloads=("hm", "ali.A"),
    requests=120,
    seed=1234,
)


def test_same_seed_same_report():
    a = run_workload_cell("aero", 500, "hm", requests=150, seed=11)
    b = run_workload_cell("aero", 500, "hm", requests=150, seed=11)
    assert a == b
    assert a.reads.values == b.reads.values
    assert a.writes.values == b.writes.values


def test_different_seed_different_report():
    a = run_workload_cell("aero", 500, "hm", requests=150, seed=11)
    b = run_workload_cell("aero", 500, "hm", requests=150, seed=12)
    assert a != b


def test_process_grid_equals_serial_grid():
    serial = GridRunner(executor=SerialExecutor())
    parallel = GridRunner(executor=ProcessExecutor(2))
    grid_s = serial.run(**GRID_KWARGS)
    grid_p = parallel.run(**GRID_KWARGS)
    assert len(grid_s.cells) == len(grid_p.cells) == 4
    for cell_s, cell_p in zip(grid_s.cells, grid_p.cells):
        assert cell_s.key == cell_p.key
        assert cell_s.report == cell_p.report
    assert grid_s == grid_p


def test_thread_grid_equals_serial_grid():
    serial = GridRunner(executor=SerialExecutor())
    threaded = GridRunner(executor=ThreadExecutor(2))
    grid_s = serial.run(**GRID_KWARGS)
    grid_t = threaded.run(**GRID_KWARGS)
    assert len(grid_s.cells) == len(grid_t.cells) == 4
    for cell_s, cell_t in zip(grid_s.cells, grid_t.cells):
        assert cell_s.key == cell_t.key
        assert cell_s.report == cell_t.report
    assert grid_s == grid_t


def test_thread_executor_api():
    import pytest as _pytest

    from repro.errors import ConfigError

    executor = ThreadExecutor(3)
    assert executor.map(abs, [-2, 1, -3]) == [2, 1, 3]
    assert list(executor.imap(abs, [])) == []
    assert "workers=3" in repr(executor)
    with _pytest.raises(ConfigError):
        ThreadExecutor(0)


def test_thread_lifetime_comparison_equals_serial():
    from repro.lifetime import compare_schemes
    from repro.nand.chip_types import TLC_3D_48L

    kwargs = dict(
        scheme_keys=("baseline", "aero"), block_count=12, step=200, seed=6
    )
    serial = compare_schemes(TLC_3D_48L, **kwargs)
    threaded = compare_schemes(
        TLC_3D_48L, executor=ThreadExecutor(2), **kwargs
    )
    for key in kwargs["scheme_keys"]:
        assert serial.curves[key].lifetime_pec == threaded.curves[key].lifetime_pec
        assert serial.curves[key].avg_mrber == threaded.curves[key].avg_mrber


def test_warm_cache_executes_zero_cells(tmp_path):
    cold = GridRunner(cache_dir=tmp_path)
    grid_cold = cold.run(**GRID_KWARGS)
    assert cold.stats.executed == 4
    assert cold.stats.cached == 0

    warm = GridRunner(cache_dir=tmp_path)
    grid_warm = warm.run(**GRID_KWARGS)
    assert warm.stats.executed == 0
    assert warm.stats.cached == 4
    assert grid_warm == grid_cold


def test_cache_resumes_partial_campaign(tmp_path):
    partial = GridRunner(cache_dir=tmp_path)
    partial.run(
        **{**GRID_KWARGS, "workloads": ("hm",)}
    )
    assert partial.stats.executed == 2

    resumed = GridRunner(cache_dir=tmp_path)
    resumed.run(**GRID_KWARGS)
    # The two "hm" cells replay from disk; only "ali.A" cells execute.
    assert resumed.stats.cached == 2
    assert resumed.stats.executed == 2


def test_cache_ignores_corrupt_entries(tmp_path):
    runner = GridRunner(cache_dir=tmp_path)
    runner.run(**GRID_KWARGS)
    for path in tmp_path.glob("*.json"):
        path.write_text("{ truncated", encoding="utf-8")
    rerun = GridRunner(cache_dir=tmp_path)
    rerun.run(**GRID_KWARGS)
    assert rerun.stats.executed == 4


def test_cached_grid_equals_uncached_grid(tmp_path):
    plain = run_grid(**GRID_KWARGS)
    cached = run_grid(**GRID_KWARGS, cache_dir=tmp_path)
    reloaded = run_grid(**GRID_KWARGS, cache_dir=tmp_path)
    assert plain == cached == reloaded


def test_perf_report_json_round_trip():
    report = run_workload_cell("aero", 500, "hm", requests=120, seed=5)
    clone = PerfReport.from_json_dict(report.to_json_dict())
    assert clone == report
    assert clone.reads.percentile(99.0) == report.reads.percentile(99.0)
    assert clone.iops == report.iops
    assert clone.extra == report.extra


def test_json_round_trip_survives_json_text():
    import json

    report = run_workload_cell("baseline", 2500, "usr", requests=100, seed=8)
    text = json.dumps(report.to_json_dict())
    clone = PerfReport.from_json_dict(json.loads(text))
    assert clone == report


def test_latency_recorder_equality():
    a = LatencyRecorder.from_values("reads", [1.0, 2.5])
    b = LatencyRecorder.from_values("reads", [1.0, 2.5])
    c = LatencyRecorder.from_values("reads", [1.0, 2.5, 3.0])
    assert a == b
    assert a != c
    assert a != "reads"


def test_result_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    report = run_workload_cell("aero", 500, "hm", requests=100, seed=3)
    cache.put("abc123", report, meta={"scheme": "aero"})
    assert "abc123" in cache
    assert len(cache) == 1
    assert cache.get("abc123") == report
    assert cache.get("missing") is None


def test_custom_workload_profile_runs_and_gets_own_cache_key(tmp_path):
    from repro.workloads.profiles import WorkloadProfile, profile_by_abbr

    custom = WorkloadProfile("synthetic", "custom_0", "cst", 0.5, 16.0, 50.0)
    tweaked_hm = WorkloadProfile("msrc", "hm_0", "hm", 0.75, 8.0, 151.5,
                                 acceleration=10.0)
    runner = GridRunner(cache_dir=tmp_path)
    kwargs = dict(schemes=("baseline",), pec_points=(500,), requests=100,
                  seed=3)
    grid = runner.run(workloads=(custom,), **kwargs)
    assert grid.report("baseline", 500, "cst").workload == "cst"

    # A tweaked profile reusing a registry abbr must not be silently
    # replaced by the stock workload, nor share its cache entry.
    grid_tweaked = runner.run(workloads=(tweaked_hm,), **kwargs)
    assert runner.stats.executed == 1
    grid_stock = runner.run(workloads=("hm",), **kwargs)
    assert runner.stats.executed == 1  # distinct fingerprint: no reuse
    assert grid_tweaked != grid_stock

    # A profile equal to the registry entry shares the stock cache.
    runner.run(workloads=(profile_by_abbr("hm"),), **kwargs)
    assert runner.stats.executed == 0
    assert runner.stats.cached == 1


def test_fingerprint_sensitivity():
    spec = SsdSpec.small_test(seed=1)
    base = dict(
        spec=spec, scheme="aero", pec=500, workload="hm",
        requests=100, seed=1,
    )
    reference = cell_fingerprint(**base)
    assert cell_fingerprint(**base) == reference
    for change in (
        {"scheme": "baseline"},
        {"pec": 2500},
        {"workload": "usr"},
        {"requests": 101},
        {"seed": 2},
        {"spec": SsdSpec.small_test(seed=2)},
    ):
        assert cell_fingerprint(**{**base, **change}) != reference
    assert cell_fingerprint(**base, erase_suspension=False) != reference
