"""Determinism and cache regressions for the evaluation harness.

The parallel runner and the result cache are only safe because every
cell is a pure function of its inputs; these tests pin that property:
same seed -> identical report, process grid == serial grid
cell-for-cell, cached report == recomputed report, and a warm cache
replays a campaign without executing anything.
"""

import pytest

from repro.harness import (
    GridRunner,
    ProcessExecutor,
    ResultCache,
    SerialExecutor,
    ThreadExecutor,
    cell_fingerprint,
    run_grid,
    run_workload_cell,
)
from repro.config import SsdSpec
from repro.ssd.metrics import LatencyRecorder, PerfReport

GRID_KWARGS = dict(
    schemes=("baseline", "aero"),
    pec_points=(500,),
    workloads=("hm", "ali.A"),
    requests=120,
    seed=1234,
)


def test_same_seed_same_report():
    a = run_workload_cell("aero", 500, "hm", requests=150, seed=11)
    b = run_workload_cell("aero", 500, "hm", requests=150, seed=11)
    assert a == b
    assert a.reads.values == b.reads.values
    assert a.writes.values == b.writes.values


def test_different_seed_different_report():
    a = run_workload_cell("aero", 500, "hm", requests=150, seed=11)
    b = run_workload_cell("aero", 500, "hm", requests=150, seed=12)
    assert a != b


def test_process_grid_equals_serial_grid():
    serial = GridRunner(executor=SerialExecutor())
    parallel = GridRunner(executor=ProcessExecutor(2))
    grid_s = serial.run(**GRID_KWARGS)
    grid_p = parallel.run(**GRID_KWARGS)
    assert len(grid_s.cells) == len(grid_p.cells) == 4
    for cell_s, cell_p in zip(grid_s.cells, grid_p.cells):
        assert cell_s.key == cell_p.key
        assert cell_s.report == cell_p.report
    assert grid_s == grid_p


def test_thread_grid_equals_serial_grid():
    serial = GridRunner(executor=SerialExecutor())
    threaded = GridRunner(executor=ThreadExecutor(2))
    grid_s = serial.run(**GRID_KWARGS)
    grid_t = threaded.run(**GRID_KWARGS)
    assert len(grid_s.cells) == len(grid_t.cells) == 4
    for cell_s, cell_t in zip(grid_s.cells, grid_t.cells):
        assert cell_s.key == cell_t.key
        assert cell_s.report == cell_t.report
    assert grid_s == grid_t


def test_thread_executor_api():
    import pytest as _pytest

    from repro.errors import ConfigError

    executor = ThreadExecutor(3)
    assert executor.map(abs, [-2, 1, -3]) == [2, 1, 3]
    assert list(executor.imap(abs, [])) == []
    assert "workers=3" in repr(executor)
    with _pytest.raises(ConfigError):
        ThreadExecutor(0)


def test_thread_lifetime_comparison_equals_serial():
    from repro.lifetime import compare_schemes
    from repro.nand.chip_types import TLC_3D_48L

    kwargs = dict(
        scheme_keys=("baseline", "aero"), block_count=12, step=200, seed=6
    )
    serial = compare_schemes(TLC_3D_48L, **kwargs)
    threaded = compare_schemes(
        TLC_3D_48L, executor=ThreadExecutor(2), **kwargs
    )
    for key in kwargs["scheme_keys"]:
        assert serial.curves[key].lifetime_pec == threaded.curves[key].lifetime_pec
        assert serial.curves[key].avg_mrber == threaded.curves[key].avg_mrber


def test_warm_cache_executes_zero_cells(tmp_path):
    cold = GridRunner(cache_dir=tmp_path)
    grid_cold = cold.run(**GRID_KWARGS)
    assert cold.stats.executed == 4
    assert cold.stats.cached == 0

    warm = GridRunner(cache_dir=tmp_path)
    grid_warm = warm.run(**GRID_KWARGS)
    assert warm.stats.executed == 0
    assert warm.stats.cached == 4
    assert grid_warm == grid_cold


def test_cache_resumes_partial_campaign(tmp_path):
    partial = GridRunner(cache_dir=tmp_path)
    partial.run(
        **{**GRID_KWARGS, "workloads": ("hm",)}
    )
    assert partial.stats.executed == 2

    resumed = GridRunner(cache_dir=tmp_path)
    resumed.run(**GRID_KWARGS)
    # The two "hm" cells replay from disk; only "ali.A" cells execute.
    assert resumed.stats.cached == 2
    assert resumed.stats.executed == 2


def test_cache_ignores_corrupt_entries(tmp_path):
    runner = GridRunner(cache_dir=tmp_path)
    runner.run(**GRID_KWARGS)
    for path in tmp_path.glob("*.json"):
        path.write_text("{ truncated", encoding="utf-8")
    rerun = GridRunner(cache_dir=tmp_path)
    rerun.run(**GRID_KWARGS)
    assert rerun.stats.executed == 4


def test_cached_grid_equals_uncached_grid(tmp_path):
    plain = run_grid(**GRID_KWARGS)
    cached = run_grid(**GRID_KWARGS, cache_dir=tmp_path)
    reloaded = run_grid(**GRID_KWARGS, cache_dir=tmp_path)
    assert plain == cached == reloaded


def test_perf_report_json_round_trip():
    report = run_workload_cell("aero", 500, "hm", requests=120, seed=5)
    clone = PerfReport.from_json_dict(report.to_json_dict())
    assert clone == report
    assert clone.reads.percentile(99.0) == report.reads.percentile(99.0)
    assert clone.iops == report.iops
    assert clone.extra == report.extra


def test_json_round_trip_survives_json_text():
    import json

    report = run_workload_cell("baseline", 2500, "usr", requests=100, seed=8)
    text = json.dumps(report.to_json_dict())
    clone = PerfReport.from_json_dict(json.loads(text))
    assert clone == report


def test_latency_recorder_equality():
    a = LatencyRecorder.from_values("reads", [1.0, 2.5])
    b = LatencyRecorder.from_values("reads", [1.0, 2.5])
    c = LatencyRecorder.from_values("reads", [1.0, 2.5, 3.0])
    assert a == b
    assert a != c
    assert a != "reads"


def test_result_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    report = run_workload_cell("aero", 500, "hm", requests=100, seed=3)
    cache.put("abc123", report, meta={"scheme": "aero"})
    assert "abc123" in cache
    assert len(cache) == 1
    assert cache.get("abc123") == report
    assert cache.get("missing") is None


def test_custom_workload_profile_runs_and_gets_own_cache_key(tmp_path):
    from repro.workloads.profiles import WorkloadProfile, profile_by_abbr

    custom = WorkloadProfile("synthetic", "custom_0", "cst", 0.5, 16.0, 50.0)
    tweaked_hm = WorkloadProfile("msrc", "hm_0", "hm", 0.75, 8.0, 151.5,
                                 acceleration=10.0)
    runner = GridRunner(cache_dir=tmp_path)
    kwargs = dict(schemes=("baseline",), pec_points=(500,), requests=100,
                  seed=3)
    grid = runner.run(workloads=(custom,), **kwargs)
    assert grid.report("baseline", 500, "cst").workload == "cst"

    # A tweaked profile reusing a registry abbr must not be silently
    # replaced by the stock workload, nor share its cache entry.
    grid_tweaked = runner.run(workloads=(tweaked_hm,), **kwargs)
    assert runner.stats.executed == 1
    grid_stock = runner.run(workloads=("hm",), **kwargs)
    assert runner.stats.executed == 1  # distinct fingerprint: no reuse
    assert grid_tweaked != grid_stock

    # A profile equal to the registry entry shares the stock cache.
    runner.run(workloads=(profile_by_abbr("hm"),), **kwargs)
    assert runner.stats.executed == 0
    assert runner.stats.cached == 1


def test_fingerprint_sensitivity():
    spec = SsdSpec.small_test(seed=1)
    base = dict(
        spec=spec, scheme="aero", pec=500, workload="hm",
        requests=100, seed=1,
    )
    reference = cell_fingerprint(**base)
    assert cell_fingerprint(**base) == reference
    for change in (
        {"scheme": "baseline"},
        {"pec": 2500},
        {"workload": "usr"},
        {"requests": 101},
        {"seed": 2},
        {"spec": SsdSpec.small_test(seed=2)},
    ):
        assert cell_fingerprint(**{**base, **change}) != reference
    assert cell_fingerprint(**base, erase_suspension=False) != reference


# --- cache correctness regressions ------------------------------------------
# Membership must match retrievability, concurrent puts must not
# collide on tmp names, and gc's keep-newest-N budget must never evict
# a healthy entry while keeping an unusable one.


@pytest.fixture(scope="module")
def small_report():
    return run_workload_cell("aero", 500, "hm", requests=100, seed=3)


def test_contains_is_false_for_truncated_entry(tmp_path, small_report):
    cache = ResultCache(tmp_path)
    cache.put("feed01", small_report)
    cache.path("feed01").write_text("{ truncated", encoding="utf-8")
    # get() treats the torn file as a miss, so membership must too
    assert cache.get("feed01") is None
    assert "feed01" not in cache


def test_contains_is_false_for_stale_version_entry(tmp_path, small_report):
    import json as _json

    from repro.harness import CACHE_VERSION

    cache = ResultCache(tmp_path)
    cache.put("feed02", small_report)
    data = _json.loads(cache.path("feed02").read_text())
    data["version"] = CACHE_VERSION - 1
    cache.path("feed02").write_text(_json.dumps(data), encoding="utf-8")
    assert cache.get("feed02") is None
    assert "feed02" not in cache
    # a healthy sibling still reads as present
    cache.put("feed03", small_report)
    assert "feed03" in cache


def test_concurrent_same_key_puts_do_not_collide(tmp_path, small_report):
    import threading

    cache = ResultCache(tmp_path)
    errors = []

    def hammer():
        try:
            for _ in range(20):
                cache.put("c0ffee", small_report)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert cache.get("c0ffee") == small_report
    # unique tmp names: nothing orphaned, nothing clobbered mid-replace
    assert list(tmp_path.glob("*.tmp.*")) == []


def test_put_tmp_names_are_unique_per_thread_and_call(tmp_path):
    from repro.harness.cache import _TMP_COUNTER

    a, b = next(_TMP_COUNTER), next(_TMP_COUNTER)
    assert a != b  # monotonic tick folded into every tmp name


def test_gc_budget_prefers_healthy_over_corrupt(tmp_path, small_report):
    import os
    import time as _time

    cache = ResultCache(tmp_path)
    now = _time.time()
    for index, key in enumerate(["aaa", "bbb", "ccc"]):
        cache.put(key, small_report)
        os.utime(cache.path(key), (now - 100 + index, now - 100 + index))
    # two *newer* corrupt entries would win the old keep-newest-N pass
    for index, key in enumerate(["ddd", "eee"]):
        cache.path(key).write_text("{ torn", encoding="utf-8")
        os.utime(cache.path(key), (now + index, now + index))

    result = cache.gc(max_entries=3, remove_corrupt=False)
    # the budget evicts the unusable entries first, keeping all healthy
    assert {entry.key for entry in result.removed} == {"ddd", "eee"}
    assert result.kept == 3
    for key in ("aaa", "bbb", "ccc"):
        assert key in cache


def test_gc_budget_still_trims_oldest_healthy(tmp_path, small_report):
    import os
    import time as _time

    cache = ResultCache(tmp_path)
    now = _time.time()
    for index, key in enumerate(["aaa", "bbb", "ccc"]):
        cache.put(key, small_report)
        os.utime(cache.path(key), (now - 100 + index, now - 100 + index))
    cache.path("ddd").write_text("{ torn", encoding="utf-8")
    os.utime(cache.path("ddd"), (now, now))

    result = cache.gc(max_entries=2, remove_corrupt=False)
    # corrupt first, then the oldest healthy entry
    assert {entry.key for entry in result.removed} == {"ddd", "aaa"}
    assert "bbb" in cache and "ccc" in cache
