"""Block state machine: pages, erase lifecycle, retirement."""

import pytest

from repro.errors import CommandError
from repro.nand.block import Block, PageState
from repro.nand.geometry import BlockAddress


@pytest.fixture
def block(profile):
    return Block(BlockAddress(0, 0, 0, 5), profile, pages=8, seed=1)


def test_fresh_block_state(block):
    assert block.free_pages == 8
    assert block.valid_count == 0
    assert block.invalid_count == 0
    assert not block.is_full
    assert block.page_state(0) is PageState.FREE


def test_program_in_order(block):
    page = block.program(lpn=100)
    assert page == 0
    assert block.page_state(0) is PageState.VALID
    assert block.page_lpn(0) == 100
    assert block.valid_count == 1
    assert block.program(lpn=101) == 1


def test_program_full_block_rejected(block):
    for index in range(8):
        block.program(lpn=index)
    assert block.is_full
    with pytest.raises(CommandError):
        block.program(lpn=99)


def test_invalidate(block):
    block.program(lpn=7)
    block.invalidate(0)
    assert block.page_state(0) is PageState.INVALID
    assert block.page_lpn(0) is None
    assert block.invalid_count == 1
    with pytest.raises(CommandError):
        block.invalidate(0)  # double invalidate


def test_iter_valid_pages(block):
    block.program(lpn=10)
    block.program(lpn=11)
    block.program(lpn=12)
    block.invalidate(1)
    assert list(block.iter_valid_pages()) == [(0, 10), (2, 12)]


def test_check_readable(block):
    with pytest.raises(CommandError):
        block.check_readable(0)
    block.program(lpn=1)
    block.check_readable(0)  # no raise


def test_erase_resets_pages(block, rng):
    for index in range(4):
        block.program(lpn=index)
    state = block.begin_erase()
    state.start_loop(1)
    state.apply_pulses(state.required)
    block.finish_erase(state)
    assert block.free_pages == 8
    assert block.valid_count == 0
    assert block.erase_count == 1
    assert block.wear.pec == 1
    assert block.wear.age_kilocycles > 0


def test_erase_with_residual_and_nispe_override(block):
    state = block.begin_erase()
    state.start_loop(1)
    state.apply_pulses(max(0, state.required - 2))
    block.finish_erase(state, residual_fail_bits=6000, nispe=3)
    assert block.wear.residual_fail_bits == 6000
    assert block.wear.residual_nispe == 3


def test_retired_block_rejects_operations(block):
    block.retire()
    with pytest.raises(CommandError):
        block.program(lpn=1)
    with pytest.raises(CommandError):
        block.begin_erase()


def test_rber_sensitivity_normalized(profile):
    """Across many blocks the sensitivity draw centers near 1.0."""
    blocks = [
        Block(BlockAddress(0, 0, 0, index), profile, pages=4, seed=3)
        for index in range(200)
    ]
    mean = sum(b.rber_sensitivity for b in blocks) / len(blocks)
    assert mean == pytest.approx(1.0, abs=0.08)
